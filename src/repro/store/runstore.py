"""Content-addressed run store: dedupe for a fleet's recordings and rows.

A debugging fleet produces millions of recordings and result rows, and
most of them say the same thing.  The store gives every artifact one
name - the SHA-256 of its canonical JSON encoding, the same hashing
attestation stamps use (:mod:`repro.util.hashing`) - so identical
artifacts occupy one object no matter how many sweeps produce them,
and a rerun can prove "I already have this" by address alone.

Layout of a store directory::

    objects/<aa>/<sha256>.json   one object per content address
    index.jsonl                  append-only index (crash-tolerant)

The object plane is immutable and self-verifying: an object's file name
*is* its hash, so ``get`` recomputes the address on read and refuses a
corrupted object instead of returning silently wrong bytes.  Writes are
atomic (temp file + rename) and idempotent - re-putting existing
content is a no-op that costs one hash.

The index is the mutable-world view over the immutable objects, in the
run journal's JSONL idiom (append + flush per entry, torn final line
ignored on load).  Three entry kinds:

``row``       one matrix cell's metric row, keyed by
              ``(seed, model, code_hash)`` - the incremental-rerun
              lookup: a sweep skips any cell whose key is already
              stored under the current code hash.
``bucket``    one quarantined/failed recording's membership in a dedupe
              bucket, keyed by ``(failure, fingerprint)`` - the failure
              signature and divergence/quarantine fingerprint from
              :mod:`repro.replay.diff`.
``exemplar``  the one recording payload the fleet ships per bucket;
              every later member of the bucket is counted, not stored.

``gc`` deletes unreferenced objects (and reports orphaned index
entries); it never touches referenced content.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.util.hashing import content_address

OBJECTS_DIR = "objects"
INDEX_NAME = "index.jsonl"
STORE_VERSION = 1


@dataclass
class BucketView:
    """One dedupe bucket, as reconstructed from the index."""

    bucket: str
    count: int = 0
    exemplar: Optional[str] = None      # content address of the payload
    failure: Optional[List[Any]] = None  # failure signature (first seen)
    cells: List[Any] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"bucket": self.bucket, "count": self.count,
                "exemplar": self.exemplar, "failure": self.failure,
                "cells": list(self.cells)}


class RunStore:
    """One content-addressed store directory."""

    def __init__(self, root: str):
        self.root = root
        self.objects_dir = os.path.join(root, OBJECTS_DIR)
        self.index_path = os.path.join(root, INDEX_NAME)

    # -- object plane --------------------------------------------------------

    def _object_path(self, address: str) -> str:
        return os.path.join(self.objects_dir, address[:2],
                            f"{address}.json")

    def put_object(self, payload: Any) -> str:
        """Store a JSON-able payload; returns its content address.

        Idempotent: content that already exists is not rewritten.  The
        write is atomic (temp + rename) so a crash can never leave a
        half-object under a valid address.
        """
        address = content_address(payload)
        path = self._object_path(address)
        if os.path.exists(path):
            return address
        os.makedirs(os.path.dirname(path), exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as out:
                json.dump(payload, out, sort_keys=True,
                          separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return address

    def get_object(self, address: str) -> Any:
        """Load an object by address, verifying its content on read."""
        path = self._object_path(address)
        if not os.path.exists(path):
            raise ReproError(
                f"store {self.root!r} has no object {address[:12]}…; "
                f"was it gc'd, or is the address from another store?")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        found = content_address(payload)
        if found != address:
            raise ReproError(
                f"store object {address[:12]}… is corrupt: content "
                f"re-hashes to {found[:12]}… - the file was modified "
                f"in place; delete it and re-run the sweep")
        return payload

    def has_object(self, address: str) -> bool:
        return os.path.exists(self._object_path(address))

    # -- index plane ---------------------------------------------------------

    def entries(self) -> List[Dict[str, Any]]:
        """All index entries, tolerating a torn final line."""
        if not os.path.exists(self.index_path):
            return []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        entries: List[Dict[str, Any]] = []
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # interrupted mid-append; that entry is lost
                raise ReproError(
                    f"corrupt store index line {index + 1} in "
                    f"{self.index_path!r}")
        return entries

    def _append(self, entry: Dict[str, Any]) -> None:
        os.makedirs(self.root, exist_ok=True)
        self._discard_torn_tail()
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def _discard_torn_tail(self) -> None:
        """Drop a newline-less final line before appending (journal
        idiom: welding onto a torn fragment would corrupt both)."""
        if not os.path.exists(self.index_path):
            return
        with open(self.index_path, "rb") as handle:
            data = handle.read()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1
        with open(self.index_path, "wb") as handle:
            handle.write(data[:keep])

    # -- rows: incremental reruns -------------------------------------------

    def put_row(self, seed: int, model: str, code_hash: str,
                row: Dict[str, Any]) -> str:
        """Store one matrix cell's row under its rerun key."""
        address = self.put_object(row)
        if self.get_row(seed, model, code_hash) != row:
            self._append({"kind": "row", "seed": int(seed),
                          "model": model, "code_hash": code_hash,
                          "address": address})
        return address

    def get_row(self, seed: int, model: str,
                code_hash: str) -> Optional[Dict[str, Any]]:
        """The stored row for ``(seed, model, code_hash)``, if any.

        The latest matching index entry wins; an entry whose object was
        gc'd away counts as absent (the cell simply reruns).
        """
        for entry in reversed(self.entries()):
            if (entry.get("kind") == "row"
                    and entry.get("seed") == int(seed)
                    and entry.get("model") == model
                    and entry.get("code_hash") == code_hash):
                address = entry.get("address")
                if address and self.has_object(address):
                    return self.get_object(address)
                return None
        return None

    def put_case(self, seed: int, code_hash: str,
                 provenance: Dict[str, Any]) -> str:
        """Store one seed's case provenance (the sweep's ``cases`` row).

        Stored alongside the seed's rows so a rerun whose every cell is
        a store hit can still emit a byte-identical ``cases`` section
        without re-running the record phase.
        """
        address = self.put_object(provenance)
        if self.get_case(seed, code_hash) != provenance:
            self._append({"kind": "case", "seed": int(seed),
                          "code_hash": code_hash, "address": address})
        return address

    def get_case(self, seed: int,
                 code_hash: str) -> Optional[Dict[str, Any]]:
        """The stored provenance for ``(seed, code_hash)``, if any."""
        for entry in reversed(self.entries()):
            if (entry.get("kind") == "case"
                    and entry.get("seed") == int(seed)
                    and entry.get("code_hash") == code_hash):
                address = entry.get("address")
                if address and self.has_object(address):
                    return self.get_object(address)
                return None
        return None

    def stored_cells(self, code_hash: str) -> Dict[Tuple[int, str], str]:
        """All ``(seed, model) -> address`` rows stored under a code hash."""
        cells: Dict[Tuple[int, str], str] = {}
        for entry in self.entries():
            if (entry.get("kind") == "row"
                    and entry.get("code_hash") == code_hash):
                address = entry.get("address")
                if address and self.has_object(address):
                    cells[(int(entry["seed"]), entry["model"])] = address
        return cells

    # -- buckets: fleet dedupe ----------------------------------------------

    def put_bucket_member(self, bucket: str, *,
                          failure: Optional[Iterable[Any]] = None,
                          fingerprint: Optional[str] = None,
                          cell: Any = None,
                          payload: Any = None) -> Tuple[Optional[str], bool]:
        """Record one recording's membership in a dedupe bucket.

        Ships ``payload`` (the recording, JSON-able) only when the
        bucket has no exemplar yet - the fleet's "one exemplar per
        bucket" rule.  Returns ``(exemplar_address, shipped)`` where
        ``shipped`` says whether *this* call stored the payload.
        """
        self._append({"kind": "bucket", "bucket": bucket,
                      "failure": list(failure) if failure else None,
                      "fingerprint": fingerprint, "cell": cell})
        existing = self.buckets().get(bucket)
        if existing is not None and existing.exemplar:
            return existing.exemplar, False
        if payload is None:
            return None, False
        address = self.put_object(payload)
        self._append({"kind": "exemplar", "bucket": bucket,
                      "address": address, "cell": cell})
        return address, True

    def buckets(self) -> Dict[str, BucketView]:
        """Dedupe buckets reconstructed from the index."""
        views: Dict[str, BucketView] = {}
        for entry in self.entries():
            kind = entry.get("kind")
            if kind not in ("bucket", "exemplar"):
                continue
            view = views.setdefault(entry["bucket"],
                                    BucketView(bucket=entry["bucket"]))
            if kind == "bucket":
                view.count += 1
                if view.failure is None and entry.get("failure"):
                    view.failure = entry["failure"]
                if entry.get("cell") is not None:
                    view.cells.append(entry["cell"])
            elif view.exemplar is None:
                view.exemplar = entry.get("address")
        return views

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Index/object counts (the CI health artifact)."""
        entries = self.entries()
        kinds: Dict[str, int] = {}
        for entry in entries:
            kind = entry.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        objects = 0
        size = 0
        if os.path.isdir(self.objects_dir):
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    if name.endswith(".json"):
                        objects += 1
                        size += os.path.getsize(
                            os.path.join(dirpath, name))
        return {"version": STORE_VERSION, "root": self.root,
                "entries": len(entries), "kinds": kinds,
                "objects": objects, "object_bytes": size,
                "buckets": len(self.buckets())}

    def gc(self) -> Dict[str, int]:
        """Delete objects no index entry references.

        Referenced objects are never touched; entries whose object has
        gone missing are counted as ``orphaned`` (their cells rerun).
        """
        live = {entry.get("address") for entry in self.entries()
                if entry.get("address")}
        removed = 0
        kept = 0
        orphaned = 0
        if os.path.isdir(self.objects_dir):
            for dirpath, _dirnames, filenames in os.walk(self.objects_dir):
                for name in filenames:
                    if not name.endswith(".json"):
                        continue
                    address = name[:-len(".json")]
                    path = os.path.join(dirpath, name)
                    if address in live:
                        kept += 1
                    else:
                        os.unlink(path)
                        removed += 1
        for address in live:
            if not self.has_object(address):
                orphaned += 1
        return {"kept": kept, "removed": removed, "orphaned": orphaned}
