"""Content-addressed run store (see :mod:`repro.store.runstore`).

One artifact, one SHA-256 name; an append-only index by
``(failure signature, divergence fingerprint)`` so a fleet dedupes its
failure recordings into buckets and ships one exemplar per bucket, and
an incremental-rerun lookup so a sweep skips every
``(seed, model, code_hash)`` cell it has already computed.
"""

from repro.store.runstore import (BucketView, INDEX_NAME, OBJECTS_DIR,
                                  RunStore, STORE_VERSION)

__all__ = ["RunStore", "BucketView", "INDEX_NAME", "OBJECTS_DIR",
           "STORE_VERSION"]
