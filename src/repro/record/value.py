"""Value-determinism recorder (iDNA-class).

Logs, per thread, the value of *every* shared-memory read plus every input
and syscall result that thread observed.  With that log each thread can be
re-executed independently - reads are fed from the log, so the thread
recomputes exactly the original values at the same execution points.

What is deliberately **not** recorded is the causal order between threads:
the paper notes value determinism "does not guarantee causal ordering of
instructions running on different CPUs, thus requiring more effort from
the developer to track causality across CPUs".

Paying a logging cost on every shared read is what puts this model at the
expensive end of Figure 1 (~3.5x on the Hypertable-style workloads).
"""

from __future__ import annotations

from repro.record.base import Recorder
from repro.vm.machine import Machine
from repro.vm.trace import StepRecord


class ValueRecorder(Recorder):
    """Records per-thread read values, inputs, syscalls, and spawns."""

    model = "value"

    def observe(self, machine: Machine, step: StepRecord) -> None:
        if step.reads:
            reads = self.log.thread_reads.setdefault(step.tid, [])
            for __, value in step.reads:
                reads.append(value)
            self.charge("memory_value", count=len(step.reads))
        if step.io is not None:
            kind, name, payload = step.io
            if kind == "input":
                self.log.thread_inputs.setdefault(step.tid, []).append(
                    (name, payload))
                self.charge("input")
            elif kind == "syscall":
                __, result = payload
                self.log.thread_syscalls.setdefault(step.tid, []).append(
                    (name, result))
                self.charge("syscall")
        if step.sync is not None and step.op == "spawn":
            # Per-thread spawn log: which function the child runs and the
            # tid it got, so replay can rebuild the thread family tree.
            child_tid = step.sync[1]
            child_fn = machine.threads[child_tid].frames[0].function.name
            self.log.thread_spawns.setdefault(step.tid, []).append(
                (child_fn, child_tid))
            self.charge("sync")
