"""Recorder interface and the ``record_run`` entry point."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.record.log import RecordingLog
from repro.vm.environment import Environment
from repro.vm.failures import IOSpec
from repro.vm.machine import Machine
from repro.vm.program import Program
from repro.vm.scheduler import RandomScheduler, Scheduler
from repro.vm.trace import StepRecord


class Recorder:
    """Base class for determinism-model recorders.

    Subclasses set :attr:`model` and implement :meth:`observe`; they charge
    every logged event into the machine's overhead meter via
    :meth:`charge` so recording overhead is measured, not asserted.
    """

    model: str = "abstract"

    def __init__(self):
        self.log = RecordingLog(model=self.model)
        self.machine: Optional[Machine] = None

    def attach(self, machine: Machine) -> None:
        """Subscribe to ``machine``'s step stream."""
        self.machine = machine
        machine.add_observer(self.observe)

    def observe(self, machine: Machine, step: StepRecord) -> None:
        """Handle one executed step (override)."""
        raise NotImplementedError

    def charge(self, event_class: str, count: int = 1) -> None:
        """Charge recording cycles for ``count`` events of a class."""
        costs = self.machine.cost_model.recording
        per_event = getattr(costs, event_class)
        self.machine.meter.charge_recording(event_class, per_event, count)

    def finalize(self, machine: Machine) -> RecordingLog:
        """Seal the log with run metadata after the machine stops."""
        self.log.failure = machine.failure
        self.log.native_cycles = machine.meter.native_cycles
        self.log.recording_cycles = machine.meter.recording_cycles
        self.log.total_steps = machine.steps
        self.log.recorded_events = dict(machine.meter.recorded_events)
        return self.log


def record_run(program: Program,
               recorder: Recorder,
               inputs: Optional[Dict[str, List[Any]]] = None,
               seed: int = 0,
               scheduler: Optional[Scheduler] = None,
               io_spec: Optional[IOSpec] = None,
               net_drop_rate: float = 0.0,
               max_steps: int = 2_000_000,
               extra_observers: Sequence[Callable] = ()) -> RecordingLog:
    """Execute one production run under ``recorder`` and return its log.

    This is the 'in production' half of a replay-debugging system: the
    program runs under a seeded preemptive scheduler (real, uncontrolled
    non-determinism from the guest's point of view) while the recorder
    logs whatever its determinism model pays for.
    """
    env = Environment(inputs=inputs, seed=seed, net_drop_rate=net_drop_rate)
    scheduler = scheduler or RandomScheduler(seed=seed)
    machine = Machine(program, env=env, scheduler=scheduler,
                      io_spec=io_spec, max_steps=max_steps)
    recorder.attach(machine)
    for observer in extra_observers:
        machine.add_observer(observer)
    machine.run()
    log = recorder.finalize(machine)
    # Self-describing run identity: a shipped log must be attributable
    # (and replayable) without out-of-band context, so the seed, the
    # scheduler's identity, and the program identifier ride along.
    log.metadata.setdefault("seed", seed)
    log.metadata.setdefault("program_entry", program.entry)
    log.metadata.setdefault("scheduler", {
        "class": type(scheduler).__name__,
        "seed": getattr(scheduler, "seed", seed),
        "switch_prob": getattr(scheduler, "switch_prob", None),
    })
    return log
