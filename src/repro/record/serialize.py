"""Recording-log (de)serialization.

A replay-debugging system ships its logs from production machines to
developer workstations; :func:`log_to_dict` / :func:`log_from_dict`
round-trip a :class:`~repro.record.log.RecordingLog` through plain
JSON-compatible structures so logs can be written to disk, attached to
bug reports, and replayed elsewhere.

Tuples (locations, sync events, selective-order entries) are encoded as
lists and restored on load; failure reports and core dumps are encoded
structurally.  The format is versioned so future log layouts can evolve.

Format version 2 (current)
--------------------------
v2 logs are *self-describing*: ``record_run`` stamps the production
scheduler's identity and :class:`~repro.models.session.DebugSession`
stamps the model name, a case reference, and the replay-relevant config
into ``metadata``, so a shipped log can be replayed by a worker that
never saw the recorder (``repro.models.replay_log`` dispatches from the
log alone).  v2 also canonicalizes metadata encoding: *any* tuple in
the metadata tree round-trips as a tuple via a typed ``$tuple`` tag
(v1 special-cased only ``dialup_sites``, silently decaying every other
tuple to a list).  Version-1 logs still load - their metadata is decoded
with the legacy rule - and replay to identical digests; future versions
are rejected with the found version in the error.

Key-type round trip
-------------------
JSON object keys are always strings, so ``json.dump`` silently turns
integer dict keys into digit strings.  The tid-keyed per-thread log
fields are handled explicitly; core-dump ``final_memory`` (which nests
tid-keyed thread states, while its other keys are guest identifiers -
never canonical integer strings) is normalized recursively by
:func:`_restore_int_keys`.  Without this, a loaded log is not the log
that was saved: ``final_memory["threads"]`` comes back keyed by ``"1"``
instead of ``1``.  Output channels are arbitrary guest string literals,
so channel-keyed dicts are deliberately left untouched.  Metadata dict
keys must be strings (values may nest tuples/lists/dicts freely).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import LogFormatError
from repro.record.log import RecordingLog
from repro.vm.failures import CoreDump, FailureKind, FailureReport

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)

# Keys a payload cannot be decoded without; everything else defaults.
# (A truncated upload usually loses the tail of the object, but a
# hand-edited or re-encoded one can lose anything.)
REQUIRED_KEYS = ("model",)

# Typed tags for metadata values JSON cannot represent directly.  A
# genuine dict whose only key collides with a tag is escaped behind
# _DICT_TAG on encode, so the encoding is canonical (decode ∘ encode is
# the identity on any metadata tree).
_TUPLE_TAG = "$tuple"
_DICT_TAG = "$dict"
_TAGS = (_TUPLE_TAG, _DICT_TAG)


def _encode_failure(failure: Optional[FailureReport]) -> Optional[dict]:
    if failure is None:
        return None
    return {
        "kind": failure.kind.value,
        "location": failure.location,
        "detail": failure.detail,
        "tid": failure.tid,
        "step_index": failure.step_index,
    }


def _restore_int_keys(obj: Any) -> Any:
    """Recursively turn canonical integer-string dict keys back to ints.

    The inverse of JSON's forced key stringification, valid for
    ``final_memory`` because its non-integer keys are guest identifiers
    (see module docstring).
    """
    if isinstance(obj, dict):
        return {_int_key(key): _restore_int_keys(value)
                for key, value in obj.items()}
    if isinstance(obj, list):
        return [_restore_int_keys(value) for value in obj]
    return obj


def _int_key(key: Any) -> Any:
    """Restore a key only when it is exactly what ``str(int)`` emits.

    Anything else ("007", "--1", non-ASCII digits, "1.0") is a genuine
    string key and passes through unchanged - an int key never serializes
    to a non-canonical form, so this is lossless.
    """
    if not (isinstance(key, str) and key and key.isascii()):
        return key
    try:
        value = int(key)
    except ValueError:
        return key
    return value if str(value) == key else key


def _decode_failure(data: Optional[dict]) -> Optional[FailureReport]:
    if data is None:
        return None
    return FailureReport(
        kind=FailureKind(data["kind"]),
        location=data["location"],
        detail=data.get("detail", ""),
        tid=data.get("tid"),
        step_index=data.get("step_index"),
    )


def log_to_dict(log: RecordingLog) -> Dict[str, Any]:
    """Encode a log as JSON-compatible primitives."""
    core = None
    if log.core_dump is not None:
        core = {
            "failure": _encode_failure(log.core_dump.failure),
            "final_memory": log.core_dump.final_memory,
            "outputs": log.core_dump.outputs,
        }
    return {
        "format_version": FORMAT_VERSION,
        "model": log.model,
        "schedule": list(log.schedule),
        "inputs": log.inputs,
        "syscalls": [list(entry) for entry in log.syscalls],
        "thread_reads": {str(tid): values
                         for tid, values in log.thread_reads.items()},
        "thread_inputs": {str(tid): [list(e) for e in entries]
                          for tid, entries in log.thread_inputs.items()},
        "thread_syscalls": {str(tid): [list(e) for e in entries]
                            for tid, entries in log.thread_syscalls.items()},
        "thread_spawns": {str(tid): [list(e) for e in entries]
                          for tid, entries in log.thread_spawns.items()},
        "outputs": log.outputs,
        "thread_paths": {str(tid): list(path)
                         for tid, path in log.thread_paths.items()},
        "sync_order": [list(entry) for entry in log.sync_order],
        "core_dump": core,
        "selective_order": [list(entry) for entry in log.selective_order],
        "selective_inputs": log.selective_inputs,
        "selective_syscalls": [list(entry)
                               for entry in log.selective_syscalls],
        "dialup_windows": [list(entry) for entry in log.dialup_windows],
        "control_plane": list(log.control_plane),
        "failure": _encode_failure(log.failure),
        "native_cycles": log.native_cycles,
        "recording_cycles": log.recording_cycles,
        "total_steps": log.total_steps,
        "recorded_events": log.recorded_events,
        "metadata": _encode_metadata(log.metadata),
    }


def _encode_metadata(metadata: Dict[str, Any]) -> Dict[str, Any]:
    """Canonical v2 metadata encoding: tuples survive anywhere."""
    return {key: _encode_meta_value(value)
            for key, value in metadata.items()}


def _encode_meta_value(value: Any) -> Any:
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode_meta_value(v) for v in value]}
    if isinstance(value, list):
        return [_encode_meta_value(v) for v in value]
    if isinstance(value, dict):
        encoded = {key: _encode_meta_value(v) for key, v in value.items()}
        if len(encoded) == 1 and next(iter(encoded)) in _TAGS:
            return {_DICT_TAG: encoded}
        return encoded
    return value


def _decode_metadata(metadata: Dict[str, Any],
                     version: int) -> Dict[str, Any]:
    if version == 1:
        # Legacy rule: only dialup_sites was tuple-typed; every other
        # tuple had already decayed to a list when the log was written.
        decoded = dict(metadata)
        if "dialup_sites" in decoded:
            decoded["dialup_sites"] = [tuple(e)
                                       for e in decoded["dialup_sites"]]
        return decoded
    return {key: _decode_meta_value(value)
            for key, value in metadata.items()}


def _decode_meta_value(value: Any) -> Any:
    if isinstance(value, dict):
        if len(value) == 1:
            tag, payload = next(iter(value.items()))
            if tag == _TUPLE_TAG:
                return tuple(_decode_meta_value(v) for v in payload)
            if tag == _DICT_TAG:
                return {key: _decode_meta_value(v)
                        for key, v in payload.items()}
        return {key: _decode_meta_value(v) for key, v in value.items()}
    if isinstance(value, list):
        return [_decode_meta_value(v) for v in value]
    return value


def log_from_dict(data: Dict[str, Any],
                  source: Optional[str] = None) -> RecordingLog:
    """Decode a log produced by :func:`log_to_dict`.

    ``source`` names where the data came from (a file path) and is
    included in error messages.  Every supported version in
    :data:`SUPPORTED_VERSIONS` loads; anything else raises
    :class:`~repro.errors.LogFormatError` naming the found version.
    """
    origin = f" in {source!r}" if source else ""
    if not isinstance(data, dict):
        raise LogFormatError(
            f"recording log{origin} is not a JSON object "
            f"(found {type(data).__name__})")
    version = data.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise LogFormatError(
            f"unsupported log format version {version!r}{origin} "
            f"(this reader supports versions "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})")
    missing = [key for key in REQUIRED_KEYS if key not in data]
    if missing:
        raise LogFormatError(
            f"recording log{origin} is missing required "
            f"key(s) {missing} (truncated or hand-edited payload?)")
    try:
        return _decode_log(data, version)
    except LogFormatError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        # A structurally damaged payload (wrong value shapes, bad enum
        # values) must never escape as a bare KeyError/TypeError: name
        # the source so a corrupt shipped log is diagnosable.
        raise LogFormatError(
            f"recording log{origin} is malformed: "
            f"{type(exc).__name__}: {exc}") from exc


def _decode_log(data: Dict[str, Any], version: int) -> RecordingLog:
    log = RecordingLog(model=data["model"])
    log.schedule = list(data.get("schedule", []))
    log.inputs = dict(data.get("inputs", {}))
    log.syscalls = [tuple(entry) for entry in data.get("syscalls", [])]
    log.thread_reads = {int(tid): values for tid, values in
                        data.get("thread_reads", {}).items()}
    log.thread_inputs = {int(tid): [tuple(e) for e in entries]
                         for tid, entries in
                         data.get("thread_inputs", {}).items()}
    log.thread_syscalls = {int(tid): [tuple(e) for e in entries]
                           for tid, entries in
                           data.get("thread_syscalls", {}).items()}
    log.thread_spawns = {int(tid): [tuple(e) for e in entries]
                         for tid, entries in
                         data.get("thread_spawns", {}).items()}
    log.outputs = dict(data.get("outputs", {}))
    log.thread_paths = {int(tid): list(path) for tid, path in
                        data.get("thread_paths", {}).items()}
    log.sync_order = [tuple(entry) for entry in data.get("sync_order", [])]
    core = data.get("core_dump")
    if core is not None:
        log.core_dump = CoreDump(
            failure=_decode_failure(core["failure"]),
            final_memory=_restore_int_keys(core.get("final_memory", {})),
            outputs=core.get("outputs", {}),
        )
    log.selective_order = [tuple(entry)
                           for entry in data.get("selective_order", [])]
    log.selective_inputs = dict(data.get("selective_inputs", {}))
    log.selective_syscalls = [tuple(entry) for entry in
                              data.get("selective_syscalls", [])]
    log.dialup_windows = [tuple(entry)
                          for entry in data.get("dialup_windows", [])]
    log.control_plane = tuple(data.get("control_plane", []))
    log.failure = _decode_failure(data.get("failure"))
    log.native_cycles = data.get("native_cycles", 0)
    log.recording_cycles = data.get("recording_cycles", 0)
    log.total_steps = data.get("total_steps", 0)
    log.recorded_events = dict(data.get("recorded_events", {}))
    log.metadata = _decode_metadata(data.get("metadata", {}), version)
    return log


def save_log(log: RecordingLog, path: str) -> None:
    """Write a log to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(log_to_dict(log), handle)


def load_log(path: str, verify: bool = True) -> RecordingLog:
    """Read a log from a JSON file.

    Failure modes - an unreadable path, a truncated or non-JSON file, a
    future format version, a missing required key - all surface as
    :class:`~repro.errors.LogFormatError` naming the path, never as raw
    ``OSError``/``json.JSONDecodeError``/``KeyError``.

    When the log carries an attestation block (every log produced by
    :class:`~repro.models.session.DebugSession` does), its content hash
    is re-verified: a tampered or bit-flipped file raises
    :class:`~repro.errors.LogAttestationError`.  ``verify=False``
    downgrades the refusal to a warning.  Unattested logs (v1, hand
    built) load as before.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LogFormatError(
            f"cannot read recording log {path!r}: {exc}") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise LogFormatError(
            f"recording log {path!r} is not valid JSON "
            f"(truncated or binary upload?): {exc}") from exc
    log = log_from_dict(data, source=path)
    from repro.record.attest import verify_attestation
    verify_attestation(log, strict=verify, source=path)
    return log
