"""Output-determinism recorder (ODR-class).

Two recording schemes, mirroring the paper's description of ODR:

``OUTPUT_ONLY``
    Records just the outputs of the original run.  Everything else -
    inputs, schedule, race outcomes - must be inferred at debug time.
    Cheapest possible recording; inference may be intractable, and the
    inferred execution may not even contain the original failure (the
    paper's 2+2=5 example).

``IO_PATH_SCHED``
    ODR's practical scheme: also records program inputs, each thread's
    execution path (branch outcomes), and the synchronization order -
    but *not* the causal order of racing instructions; the values read
    by races are inferred during replay.
"""

from __future__ import annotations

import enum

from repro.record.base import Recorder
from repro.vm.machine import Machine
from repro.vm.trace import StepRecord


class OutputMode(enum.Enum):
    OUTPUT_ONLY = "output-only"
    IO_PATH_SCHED = "io-path-sched"


class OutputRecorder(Recorder):
    """Records outputs, optionally plus inputs/path/sync order."""

    model = "output"

    def __init__(self, mode: OutputMode = OutputMode.IO_PATH_SCHED):
        super().__init__()
        self.mode = mode
        self.log.metadata["mode"] = mode.value

    def observe(self, machine: Machine, step: StepRecord) -> None:
        if step.io is not None:
            self._observe_io(step)
        if self.mode != OutputMode.IO_PATH_SCHED:
            return
        if step.branch_taken is not None:
            self.log.thread_paths.setdefault(step.tid, []).append(
                step.branch_taken)
            self.charge("branch")
        if step.sync is not None:
            self.log.sync_order.append((step.tid, step.op, step.sync[1]))
            self.charge("sync")
            if step.op == "spawn":
                child_tid = step.sync[1]
                child_fn = (machine.threads[child_tid]
                            .frames[0].function.name)
                self.log.thread_spawns.setdefault(step.tid, []).append(
                    (child_fn, child_tid))

    def _observe_io(self, step: StepRecord) -> None:
        kind, name, payload = step.io
        if kind == "output":
            self.log.outputs.setdefault(name, []).append(payload)
            self.charge("output")
        elif self.mode == OutputMode.IO_PATH_SCHED:
            if kind == "input":
                self.log.inputs.setdefault(name, []).append(payload)
                self.log.thread_inputs.setdefault(step.tid, []).append(
                    (name, payload))
                self.charge("input")
            elif kind == "syscall":
                __, result = payload
                self.log.syscalls.append((step.tid, name, result))
                self.log.thread_syscalls.setdefault(step.tid, []).append(
                    (name, result))
                self.charge("syscall")
