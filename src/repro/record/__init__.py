"""Recording backends, one per determinism model.

Each recorder subscribes to a machine's step stream and logs exactly the
events its determinism model pays for, charging the per-event recording
costs into the machine's overhead meter.  The paper's Figure 1 x-axis
("runtime overhead") is the meter's overhead factor after the production
run; its y-axis ("debugging utility") comes from replaying the resulting
:class:`~repro.record.log.RecordingLog` with the matching replayer.

===================  ==============================  =======================
Model                Recorder                        Events logged
===================  ==============================  =======================
perfect              :class:`FullRecorder`           schedule, inputs,
                                                     syscalls
value (iDNA)         :class:`ValueRecorder`          per-thread read values,
                                                     inputs, syscalls
output (ODR)         :class:`OutputRecorder`         outputs only, or
                                                     inputs+path+sync order
failure (ESD)        :class:`FailureRecorder`        nothing (core dump at
                                                     failure)
debug (RCSE)         :class:`SelectiveRecorder`      control-plane events +
                                                     trigger-dialed segments
===================  ==============================  =======================
"""

from repro.record.log import RecordingLog
from repro.record.base import Recorder, record_run
from repro.record.full import FullRecorder
from repro.record.value import ValueRecorder
from repro.record.output import OutputRecorder, OutputMode
from repro.record.failure import FailureRecorder
from repro.record.selective import SelectiveRecorder, FidelityLevel
from repro.record.serialize import (log_to_dict, log_from_dict, save_log,
                                    load_log)

__all__ = [
    "RecordingLog", "Recorder", "record_run",
    "FullRecorder", "ValueRecorder", "OutputRecorder", "OutputMode",
    "FailureRecorder", "SelectiveRecorder", "FidelityLevel",
    "log_to_dict", "log_from_dict", "save_log", "load_log",
]
