"""Failure-determinism recorder (ESD-class).

Records *nothing* during the production run - overhead is exactly 1.0x.
When the run fails, :meth:`finalize` captures the machine's core dump
(failure signature, final shared memory, per-thread exit states,
outputs), which is all the information execution synthesis gets to work
from.
"""

from __future__ import annotations

from repro.record.base import Recorder
from repro.vm.machine import Machine
from repro.vm.trace import StepRecord


class FailureRecorder(Recorder):
    """The zero-recording backend: ship a bug report, infer the rest."""

    model = "failure"

    def observe(self, machine: Machine, step: StepRecord) -> None:
        # Deliberately empty: failure determinism does no in-production
        # logging.  (Even the step subscription is free in our cost model.)
        return

    def finalize(self, machine: Machine) -> "RecordingLog":
        log = super().finalize(machine)
        if machine.failure is not None:
            log.core_dump = machine.core_dump()
        return log
