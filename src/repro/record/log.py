"""The recording log: what survives the production run.

A single :class:`RecordingLog` type serves every determinism model; each
recorder fills only the fields its model pays for and leaves the rest
empty.  Replayers must not touch fields their model did not record -
that would be cheating the relaxation the model claims to make.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.vm.failures import CoreDump, FailureReport


@dataclass
class RecordingLog:
    """Events captured during one recorded production run."""

    model: str
    # -- full-determinism fields ------------------------------------------
    schedule: List[int] = field(default_factory=list)
    inputs: Dict[str, List[Any]] = field(default_factory=dict)
    syscalls: List[Tuple[int, str, Any]] = field(default_factory=list)
    # -- value-determinism fields -----------------------------------------
    thread_reads: Dict[int, List[Any]] = field(default_factory=dict)
    thread_inputs: Dict[int, List[Tuple[str, Any]]] = field(
        default_factory=dict)
    thread_syscalls: Dict[int, List[Tuple[str, Any]]] = field(
        default_factory=dict)
    thread_spawns: Dict[int, List[Tuple[str, int]]] = field(
        default_factory=dict)
    # -- output-determinism fields ----------------------------------------
    outputs: Dict[str, List[Any]] = field(default_factory=dict)
    thread_paths: Dict[int, List[bool]] = field(default_factory=dict)
    sync_order: List[Tuple[int, str, Any]] = field(default_factory=list)
    # -- failure-determinism fields ---------------------------------------
    core_dump: Optional[CoreDump] = None
    # -- RCSE fields --------------------------------------------------------
    # Ordered tids of recorded (control-plane or dialed-up) steps, plus
    # the step sites, so replay can enforce their relative order.
    selective_order: List[Tuple[int, str]] = field(default_factory=list)
    selective_inputs: Dict[str, List[Any]] = field(default_factory=dict)
    selective_syscalls: List[Tuple[int, str, Any]] = field(
        default_factory=list)
    dialup_windows: List[Tuple[int, int]] = field(default_factory=list)
    control_plane: Tuple[str, ...] = ()
    # -- run metadata --------------------------------------------------------
    failure: Optional[FailureReport] = None
    native_cycles: int = 0
    recording_cycles: int = 0
    total_steps: int = 0
    recorded_events: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def overhead_factor(self) -> float:
        """Recording overhead (x): recorded run time over native time."""
        if self.native_cycles == 0:
            return 1.0
        return (self.native_cycles + self.recording_cycles) / self.native_cycles

    def event_count(self) -> int:
        """Total number of events this log paid to record."""
        return sum(self.recorded_events.values())

    def summary(self) -> str:
        """One-line human-readable description (used by examples)."""
        events = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.recorded_events.items()))
        return (f"[{self.model}] overhead={self.overhead_factor:.2f}x "
                f"steps={self.total_steps} events({events or 'none'})")
