"""Recording-log attestation: tamper-evident, environment-matched logs.

A fleet ships recording logs to developer workstations over links and
storage that corrupt, truncate, and go stale.  Replaying a damaged log -
or an intact log against a guest whose source has since changed - does
not fail loudly; it *silently diverges*, which is the worst possible
failure mode for a tool whose entire claim is faithful reproduction.

``stamp_attestation`` therefore seals every v2 log with SHA-256 hashes
of the things a replay must agree with:

``content_sha256``        the canonical JSON encoding of the whole log
                          body (everything except the attestation block
                          itself) - catches truncation and bit flips.
``guest_sha256``          a structural fingerprint of the guest program
                          (functions, instructions, globals, arrays,
                          mutexes, entry) - catches replaying a log
                          against a workload that has since changed.
``scheduler_sha256``      the production scheduler identity stamped by
                          ``record_run`` - catches replaying under a
                          different scheduling regime.
``replay_config_sha256``  the shipped replay config - catches knob
                          drift between recorder and replayer.

``verify_attestation`` recomputes each hash the verifier has the
material for and raises a structured
:class:`~repro.errors.LogAttestationError` on the first mismatch (or
warns, when the caller opted out of strict verification).  Logs that
carry no attestation block (v1 logs, hand-built logs) verify trivially -
attestation is evidence when present, not a gate on old artifacts.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import LogAttestationError
# Attestation, the run store, and divergence fingerprints must hash
# through one implementation (stamps are byte-compatible by test);
# re-exported here for the existing import path.
from repro.util.hashing import canonical_json, sha256_hex  # noqa: F401

ATTESTATION_KEY = "attestation"
ATTESTATION_ALGORITHM = "sha256"


def guest_fingerprint(program) -> str:
    """SHA-256 of a program's structure (not its concrete source text).

    Computed from the validated program object - entry, declarations,
    and every function's instruction list - so the recording and
    replaying sides agree even when one holds source text and the other
    only the compiled program.  Two differently-formatted sources that
    compile to the same program intentionally share a fingerprint.
    """
    dump: List[Any] = [
        "minivm-program",
        program.entry,
        sorted(program.globals.items()),
        sorted(program.arrays.items()),
        sorted(program.mutexes),
    ]
    for name in sorted(program.functions):
        fn = program.functions[name]
        dump.append([name, list(fn.params), [repr(i) for i in fn.body]])
    return sha256_hex(canonical_json(dump))


def content_fingerprint(log) -> str:
    """SHA-256 of the log's canonical encoding, minus the attestation."""
    from repro.record.serialize import log_to_dict  # avoid import cycle
    data = log_to_dict(log)
    metadata = dict(data.get("metadata") or {})
    metadata.pop(ATTESTATION_KEY, None)
    data["metadata"] = metadata
    return sha256_hex(canonical_json(data))


def stamp_attestation(log, program=None) -> Dict[str, str]:
    """Seal ``log`` with its attestation block; returns the block.

    Must be the *last* metadata write before the log ships - the content
    hash covers every other field, so stamping earlier would invalidate
    it.  ``program`` is the guest the run executed (omitted only by
    callers that genuinely have no program object).
    """
    block: Dict[str, str] = {"algorithm": ATTESTATION_ALGORITHM}
    if program is not None:
        block["guest_sha256"] = guest_fingerprint(program)
    scheduler = log.metadata.get("scheduler")
    if scheduler is not None:
        block["scheduler_sha256"] = sha256_hex(canonical_json(scheduler))
    config = log.metadata.get("replay_config")
    if config is not None:
        block["replay_config_sha256"] = sha256_hex(canonical_json(config))
    log.metadata.pop(ATTESTATION_KEY, None)
    block["content_sha256"] = content_fingerprint(log)
    log.metadata[ATTESTATION_KEY] = block
    return block


def _checks(log, program) -> List[Tuple[str, str, str]]:
    """(field, expected, found) for every hash the verifier can recompute."""
    block = log.metadata.get(ATTESTATION_KEY) or {}
    checks: List[Tuple[str, str, str]] = []
    if "content_sha256" in block:
        checks.append(("content", block["content_sha256"],
                       content_fingerprint(log)))
    if program is not None and "guest_sha256" in block:
        checks.append(("guest", block["guest_sha256"],
                       guest_fingerprint(program)))
    scheduler = log.metadata.get("scheduler")
    if scheduler is not None and "scheduler_sha256" in block:
        checks.append(("scheduler", block["scheduler_sha256"],
                       sha256_hex(canonical_json(scheduler))))
    config = log.metadata.get("replay_config")
    if config is not None and "replay_config_sha256" in block:
        checks.append(("replay_config", block["replay_config_sha256"],
                       sha256_hex(canonical_json(config))))
    return checks


def verify_attestation(log, program=None, strict: bool = True,
                       source: Optional[str] = None) -> bool:
    """Check every attested hash the verifier has the material for.

    Returns ``True`` when the log carries an attestation block and every
    recomputed hash matches, ``False`` when the log is unattested.  On a
    mismatch: raises :class:`~repro.errors.LogAttestationError` naming
    the field (and ``source``, a path or payload description, when
    given); with ``strict=False`` the refusal is downgraded to a
    :class:`UserWarning` - the explicit "I know, replay it anyway"
    escape hatch (``--no-verify`` on the CLI).
    """
    if ATTESTATION_KEY not in (log.metadata or {}):
        return False
    for field, expected, found in _checks(log, program):
        if expected == found:
            continue
        origin = f" in {source!r}" if source else ""
        message = (
            f"recording log{origin} failed {field} attestation: "
            f"stamped {ATTESTATION_ALGORITHM}:{expected[:12]}… but "
            f"recomputed {ATTESTATION_ALGORITHM}:{found[:12]}… - the "
            f"log was tampered with in transit, or the "
            f"{'guest/workload' if field == 'guest' else 'recording'} "
            f"no longer matches what was recorded")
        if strict:
            raise LogAttestationError(message, field=field,
                                      expected=expected, found=found,
                                      path=source or "")
        warnings.warn(f"{message} (verification disabled - replay may "
                      f"silently diverge)", stacklevel=2)
        return False
    return True


def is_attested(log) -> bool:
    """Whether ``log`` carries an attestation block at all."""
    return ATTESTATION_KEY in (log.metadata or {})
