"""Root-Cause-driven Selectivity (RCSE): the debug-determinism recorder.

The paper's §3.1 strategy: provide strong determinism guarantees for the
portions of the execution likely to contain the root cause, relax the
rest.  This recorder composes the three heuristics:

* **code-based selection** (§3.1.1): steps executing inside control-plane
  functions are always recorded at high fidelity (interleaving order +
  inputs + syscall results).  The control-plane set comes from the
  classifier in :mod:`repro.analysis.planes` or from a manual annotation.
* **data-based selection** (§3.1.2): invariant monitors can be installed
  as triggers; an invariant violation dials recording fidelity up.
* **combined code/data triggers** (§3.1.3): any object implementing the
  :class:`Trigger` protocol (e.g. the race detector in
  :mod:`repro.analysis.triggers`) can fire and dial fidelity up from that
  point on; after a quiet period fidelity dials back down (§3.1.3's
  dial-down, measured in the trigger ablation bench).

While fidelity is HIGH, *every* step is recorded (interleaving + I/O), so
races that happen inside the window are pinned exactly.  While fidelity is
LOW, only control-plane steps and the global synchronization order are
recorded.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Protocol, Set, Tuple

from repro.record.base import Recorder
from repro.vm.machine import Machine
from repro.vm.trace import StepRecord


class Trigger(Protocol):
    """A potential-bug detector that can request a fidelity dial-up."""

    name: str

    def observe(self, machine: Machine, step: StepRecord) -> bool:
        """Inspect one step; return True to dial recording fidelity up."""
        ...


class FidelityLevel(enum.Enum):
    LOW = "low"
    HIGH = "high"


class SelectiveRecorder(Recorder):
    """Records control-plane behaviour precisely, data plane loosely."""

    model = "rcse"

    def __init__(self,
                 control_plane: Iterable[str] = (),
                 triggers: Optional[List[Trigger]] = None,
                 dialdown_quiet_steps: Optional[int] = None,
                 trigger_step_cost: int = 0):
        super().__init__()
        self.control_plane: Set[str] = set(control_plane)
        self.triggers = list(triggers or [])
        self.dialdown_quiet_steps = dialdown_quiet_steps
        self.trigger_step_cost = trigger_step_cost
        self.fidelity = FidelityLevel.LOW
        self._quiet_steps = 0
        self._dialup_start: Optional[int] = None
        self._last_recorded_tid = None
        self._dialup_sites: Set[Tuple[int, str]] = set()
        self.log.control_plane = tuple(sorted(self.control_plane))

    # -- fidelity control ----------------------------------------------------

    def dial_up(self, step_index: int) -> None:
        """Switch to HIGH fidelity from this step onward."""
        if self.fidelity is FidelityLevel.HIGH:
            return
        self.fidelity = FidelityLevel.HIGH
        self._dialup_start = step_index
        self._quiet_steps = 0

    def dial_down(self, step_index: int) -> None:
        """Fall back to LOW fidelity (heuristic misfire or quiet period)."""
        if self.fidelity is FidelityLevel.LOW:
            return
        self.fidelity = FidelityLevel.LOW
        if self._dialup_start is not None:
            self.log.dialup_windows.append((self._dialup_start, step_index))
        self._dialup_start = None

    # -- observation ------------------------------------------------------------

    def observe(self, machine: Machine, step: StepRecord) -> None:
        self._run_triggers(machine, step)
        recorded = (step.function in self.control_plane
                    or self.fidelity is FidelityLevel.HIGH)
        if self.fidelity is FidelityLevel.HIGH:
            self._dialup_sites.add((step.tid, step.site))
        # Synchronization order is always recorded: sync events are rare
        # (low data rate) and pin the lock-ordering skeleton of the run.
        if step.sync is not None:
            self.log.sync_order.append((step.tid, step.op, step.sync[1]))
            self.charge("sync")
            if step.op == "spawn":
                child_tid = step.sync[1]
                child_fn = (machine.threads[child_tid]
                            .frames[0].function.name)
                self.log.thread_spawns.setdefault(step.tid, []).append(
                    (child_fn, child_tid))
        if recorded:
            self._record_step(step)

    def finalize(self, machine: Machine):
        if self.fidelity is FidelityLevel.HIGH:
            self.dial_down(machine.steps)
        log = super().finalize(machine)
        log.metadata["dialup_sites"] = sorted(self._dialup_sites)
        log.metadata["trigger_names"] = [t.name for t in self.triggers]
        return log

    # -- internals ------------------------------------------------------------

    def _run_triggers(self, machine: Machine, step: StepRecord) -> None:
        if not self.triggers:
            return
        if self.trigger_step_cost:
            machine.meter.charge_recording(
                "trigger", self.trigger_step_cost, 1)
        fired = False
        for trigger in self.triggers:
            if trigger.observe(machine, step):
                fired = True
        if fired:
            self.dial_up(step.index)
        elif self.fidelity is FidelityLevel.HIGH:
            self._quiet_steps += 1
            if (self.dialdown_quiet_steps is not None
                    and self._quiet_steps >= self.dialdown_quiet_steps):
                self.dial_down(step.index)

    def _record_step(self, step: StepRecord) -> None:
        self.log.selective_order.append((step.tid, step.site))
        if step.tid != self._last_recorded_tid:
            self.charge("schedule")
            self._last_recorded_tid = step.tid
        if step.io is None:
            return
        kind, name, payload = step.io
        if kind == "input":
            self.log.selective_inputs.setdefault(name, []).append(payload)
            self.charge("input")
        elif kind == "syscall":
            __, result = payload
            self.log.selective_syscalls.append((step.tid, name, result))
            self.charge("syscall")
        elif kind == "output" and step.function in self.control_plane:
            # Control-plane channel data (cheap, low rate) - §4 records
            # "just the data on control-plane channels".
            self.log.outputs.setdefault(name, []).append(payload)
            self.charge("output")
