"""Full (perfect-determinism) recorder.

Records every source of non-determinism: the complete thread interleaving
(compressed as context-switch points, which is what it is charged for),
every input value, and every syscall result.  Replaying this log with
:class:`~repro.replay.deterministic.DeterministicReplayer` reproduces the
original execution bit-for-bit - the top-left point of the paper's
Figure 1: maximal debugging utility, maximal recording overhead.
"""

from __future__ import annotations

from repro.record.base import Recorder
from repro.vm.machine import Machine
from repro.vm.trace import StepRecord


class FullRecorder(Recorder):
    """Records schedule + inputs + syscalls (SMP-ReVirt-class fidelity)."""

    model = "full"

    def __init__(self):
        super().__init__()
        self._last_tid = None

    def observe(self, machine: Machine, step: StepRecord) -> None:
        self.log.schedule.append(step.tid)
        if step.tid != self._last_tid:
            # The schedule log is run-length compressed; a recorder pays
            # once per context switch, not once per instruction.
            self.charge("schedule")
            self._last_tid = step.tid
        if step.io is not None:
            kind, name, payload = step.io
            if kind == "input":
                self.log.inputs.setdefault(name, []).append(payload)
                self.charge("input")
            elif kind == "syscall":
                __, result = payload
                self.log.syscalls.append((step.tid, name, result))
                self.charge("syscall")
        if step.sync is not None:
            self.log.sync_order.append((step.tid, step.op, step.sync[1]))
            self.charge("sync")
