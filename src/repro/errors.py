"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError``, ...) in their own code.

Guest-program failures (assertion violations, memory errors inside MiniVM
programs) are *not* Python exceptions: they are modelled as
:class:`repro.vm.failures.FailureReport` values, because a failing guest is
a normal, expected outcome for a debugging tool.  The exceptions here signal
misuse of the library itself or internal invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramError(ReproError):
    """A MiniVM program is malformed (bad label, bad operand, bad function)."""


class AssemblerError(ProgramError):
    """Raised when assembly-language source cannot be assembled."""


class CompileError(ProgramError):
    """Raised when MiniLang source cannot be compiled.

    Carries an optional source position so tooling can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        position = f" (line {line}, col {column})" if line else ""
        super().__init__(message + position)
        self.line = line
        self.column = column


class MachineError(ReproError):
    """The VM was driven incorrectly (stepping a finished machine, etc.)."""


class SchedulerError(ReproError):
    """A scheduler made an illegal choice (blocked/unknown thread)."""


class ReplayDivergenceError(ReproError):
    """A replay run diverged from the recorded log.

    Raised by strict replayers when the execution being reconstructed
    no longer matches the recording (e.g. the log says thread 2 runs but
    thread 2 is blocked).  Relaxed replayers generally *tolerate*
    divergence - that is the point of the paper - so only deterministic
    replay raises this.
    """


class InferenceBudgetExceeded(ReproError):
    """An inference/search engine exhausted its step budget.

    The search state at exhaustion is reported so callers can decide to
    retry with a larger budget (the paper's 'prohibitively large
    post-factum analysis times' failure mode).
    """

    def __init__(self, message: str, explored: int = 0, budget: int = 0):
        super().__init__(message)
        self.explored = explored
        self.budget = budget


class SolverError(ReproError):
    """The constraint solver was given an ill-formed constraint system."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class SpecError(ReproError):
    """An I/O specification is malformed or cannot be evaluated."""


class RecordingFailedError(ReproError, RuntimeError):
    """A recording session could not capture a failing production run.

    Either no scheduler seed in the searched range made the case fail,
    or the pinned seed's run completed cleanly under the recorder.
    Subclasses :class:`RuntimeError` for callers of the historical
    ``evaluate_app_model`` contract.
    """


class UnknownModelError(ReproError, ValueError):
    """A determinism-model name is not in the model registry.

    Subclasses :class:`ValueError` as well because the model name is an
    ordinary bad argument to callers that take model names as strings
    (``get_model``/``run_matrix``).
    """


class ProtocolError(ReproError):
    """A remote-fleet wire frame violated the protocol.

    Raised by :mod:`repro.corpus.protocol` when a length-prefixed JSON
    frame cannot be read: the connection dropped mid-frame, the declared
    length is absurd, the body is not valid JSON, or the peer speaks a
    different protocol version.  A clean close *between* frames is an
    ``EOFError``, not a protocol violation - only a tear inside a frame
    is.
    """


class ResumeMismatchError(ReproError):
    """A resumed sweep does not match its run directory's journal.

    ``repro corpus run --resume <dir>`` must recompute only missing
    cells of the *same* sweep; silently merging a journal recorded for
    different seeds, models, or journal format would produce an artifact
    that belongs to neither run.  The structured fields name the
    disagreement:

    ``field``      what disagreed (``seeds``, ``models``, ``format``)
    ``journal``    the value recorded in the journal header
    ``requested``  the value the resuming invocation asked for
    """

    def __init__(self, message: str, field: str = "",
                 journal=None, requested=None):
        super().__init__(message)
        self.field = field
        self.journal = journal
        self.requested = requested


class LogFormatError(ReproError):
    """A recording log could not be read, parsed, or version-matched.

    Raised by :mod:`repro.record.serialize` with the offending path (when
    loading from disk) and the found format version in the message, so a
    truncated upload or a log from a newer producer is diagnosable from
    the error alone.
    """


class LogAttestationError(LogFormatError):
    """A recording log failed attestation against its stamped hashes.

    v2 logs are stamped (:mod:`repro.record.attest`) with SHA-256 hashes
    of the log body, the guest program, the production scheduler
    identity, and the shipped replay config.  A payload whose recomputed
    hash disagrees - a truncated or bit-flipped upload, or a log whose
    guest source / config no longer matches the replaying workstation -
    is *refused* instead of silently diverging at replay.

    Subclasses :class:`LogFormatError` so "refuse bad log files" call
    sites catch both with one handler.  The structured fields name what
    mismatched:

    ``field``      which attested hash disagreed (``content``, ``guest``,
                   ``scheduler``, ``replay_config``)
    ``expected``   the hash stamped into the log at record time
    ``found``      the hash recomputed by the verifier
    ``path``       where the log came from, when known
    """

    def __init__(self, message: str, field: str = "",
                 expected: str = "", found: str = "",
                 path: str = ""):
        super().__init__(message)
        self.field = field
        self.expected = expected
        self.found = found
        self.path = path
